package aecdsm_test

import (
	"io"
	"os"
	"strconv"
	"testing"

	"aecdsm"
	"aecdsm/internal/aec"
	"aecdsm/internal/harness"
	"aecdsm/internal/network"
)

// benchScale controls the problem sizes the benchmark harness uses. The
// default 0.25 keeps `go test -bench=.` under a few minutes; set
// AEC_BENCH_SCALE=1.0 to regenerate the tables at the paper's sizes.
func benchScale() float64 {
	if s := os.Getenv("AEC_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 && v <= 1 {
			return v
		}
	}
	return 0.25
}

// benchOut returns where table output goes: stdout with -v-style verbosity
// via AEC_BENCH_PRINT=1, discarded otherwise.
func benchOut() io.Writer {
	if os.Getenv("AEC_BENCH_PRINT") != "" {
		return os.Stdout
	}
	return io.Discard
}

// reportParallelCycles attaches the simulated parallel execution time of
// the run set as a benchmark metric.
func reportParallelCycles(b *testing.B, e *harness.Experiments, app string, kind harness.ProtocolKind) {
	b.Helper()
	res := e.Run(app, kind)
	b.ReportMetric(float64(res.Cycles()), "simcycles")
}

// BenchmarkTable2SyncEvents regenerates Table 2: synchronization events
// per application, measured under AEC.
func BenchmarkTable2SyncEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := aecdsm.NewExperiments(benchScale())
		e.Table2(benchOut())
	}
}

// BenchmarkTable3LAPSuccess regenerates Table 3: LAP success rates per
// lock-variable group for Ns=2.
func BenchmarkTable3LAPSuccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := aecdsm.NewExperiments(benchScale())
		e.Table3(benchOut())
	}
}

// BenchmarkFigure3FaultOverhead regenerates Figure 3: memory access fault
// overhead under AEC without LAP vs AEC, lock-intensive applications.
func BenchmarkFigure3FaultOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := aecdsm.NewExperiments(benchScale())
		e.Figure3(benchOut())
	}
}

// BenchmarkFigure4NoLAPvsLAP regenerates Figure 4: running time breakdown
// under AEC without LAP vs AEC.
func BenchmarkFigure4NoLAPvsLAP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := aecdsm.NewExperiments(benchScale())
		e.Figure4(benchOut())
	}
}

// BenchmarkTable4DiffStats regenerates Table 4: diff sizes, merge rates
// and the hidden fraction of diff-creation cost under AEC.
func BenchmarkTable4DiffStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := aecdsm.NewExperiments(benchScale())
		e.Table4(benchOut())
	}
}

// BenchmarkFigure5TMvsAEC regenerates Figure 5: execution time breakdowns
// under TreadMarks vs AEC for the barrier-dominated applications.
func BenchmarkFigure5TMvsAEC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := aecdsm.NewExperiments(benchScale())
		e.Figure5(benchOut())
	}
}

// BenchmarkFigure6TMvsAEC regenerates Figure 6: execution time breakdowns
// under TreadMarks vs AEC for the lock-intensive applications.
func BenchmarkFigure6TMvsAEC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := aecdsm.NewExperiments(benchScale())
		e.Figure6(benchOut())
	}
}

// BenchmarkNsSweep regenerates the §5.1 robustness study: LAP accuracy and
// runtime for update-set sizes 1-3.
func BenchmarkNsSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := aecdsm.NewExperiments(benchScale())
		e.NsSweep(benchOut())
	}
}

// BenchmarkApp runs every application under every protocol individually,
// reporting the simulated parallel execution time as a metric — the raw
// material behind every figure, useful for ablation comparisons.
func BenchmarkApp(b *testing.B) {
	kinds := []harness.ProtocolKind{
		harness.ProtoAEC, harness.ProtoAECNoLAP, harness.ProtoTM, harness.ProtoIdeal,
	}
	for _, app := range harness.AllApps() {
		for _, kind := range kinds {
			app, kind := app, kind
			b.Run(app+"/"+string(kind), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					e := aecdsm.NewExperiments(benchScale())
					reportParallelCycles(b, e, app, kind)
				}
			})
		}
	}
}

// BenchmarkMeshTransfer measures the interconnect hot path. Transfer runs
// once per simulated message, so it must not allocate: ReportAllocs keeps
// the reusable route scratch buffer honest.
func BenchmarkMeshTransfer(b *testing.B) {
	m := network.NewMesh(aecdsm.DefaultParams())
	b.ReportAllocs()
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		m.Transfer(now, i%16, (i*7+3)%16, 256)
		now += 5
	}
}

// BenchmarkAblation quantifies AEC's two overlap design choices on a
// barrier-heavy and a lock-heavy application: eager barrier-time diff
// creation (vs fully lazy) and the acquire-time overlap window.
func BenchmarkAblation(b *testing.B) {
	apps := []string{"Ocean", "Water-ns"}
	variants := []struct {
		name string
		mk   func() *aec.AEC
	}{
		{"full", func() *aec.AEC { return aec.New(aec.DefaultOptions()) }},
		{"lazy-barrier-diffs", func() *aec.AEC {
			return aec.New(aec.Options{UseLAP: true, Ns: 2, LazyBarrierDiffs: true})
		}},
		{"no-acquire-overlap", func() *aec.AEC {
			return aec.New(aec.Options{UseLAP: true, Ns: 2, NoAcquireOverlap: true})
		}},
	}
	for _, app := range apps {
		for _, v := range variants {
			app, v := app, v
			b.Run(app+"/"+v.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					prog, err := aecdsm.NewApp(app, benchScale())
					if err != nil {
						b.Fatal(err)
					}
					res := harness.MustRun(aecdsm.DefaultParams(), v.mk(), prog)
					b.ReportMetric(float64(res.Cycles()), "simcycles")
				}
			})
		}
	}
}
