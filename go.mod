module aecdsm

go 1.22
