package aecdsm

import (
	"io"

	"aecdsm/internal/trace"
)

// Tracer receives protocol events during a simulation run. Attach one via
// Config.TraceSink (or harness.RunTraced). Implementations in this package:
// the ring buffer, the JSONL stream writer, the Chrome trace_event exporter
// and the metrics aggregator — combine several with MultiTracer.
type Tracer = trace.Tracer

// TraceEvent is one protocol event: what happened (Kind), when (Cycle),
// where (Proc), and to which lock/page, with kind-specific Arg/Arg2/Note.
type TraceEvent = trace.Event

// TraceKind enumerates the traced protocol event kinds (lock traffic, LAP
// predictions, faults, diffs, barriers, messages); see the trace package
// constants (trace.KindLockGrant, ...) and docs/OBSERVABILITY.md.
type TraceKind = trace.Kind

// TraceRing is a fixed-capacity in-memory sink keeping the newest events.
type TraceRing = trace.Ring

// JSONLTracer streams events as one JSON object per line. Its output is
// byte-identical across identical-config runs.
type JSONLTracer = trace.JSONL

// ChromeTracer writes the Chrome trace_event format, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing, one track per simulated processor.
type ChromeTracer = trace.Chrome

// TraceMetrics aggregates events into per-lock and per-page summaries
// (hold/wait histograms, LAP accuracy, diff volume) exportable as JSON.
type TraceMetrics = trace.Metrics

// NewTraceRing returns an in-memory ring-buffer sink holding the most
// recent capacity events.
func NewTraceRing(capacity int) *TraceRing { return trace.NewRing(capacity) }

// NewJSONLTracer returns a sink streaming events to w as JSON Lines.
// Call Close (or Flush) when the run finishes.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return trace.NewJSONL(w) }

// NewChromeTracer returns a sink writing the Chrome trace_event format to
// w. Call Close when the run finishes to terminate the JSON document.
func NewChromeTracer(w io.Writer) *ChromeTracer { return trace.NewChrome(w) }

// NewTraceMetrics returns an aggregating sink; after the run, use Summary
// or WriteJSON for the per-lock/per-page report.
func NewTraceMetrics() *TraceMetrics { return trace.NewMetrics() }

// MultiTracer fans events out to several sinks (nil sinks are skipped).
func MultiTracer(sinks ...Tracer) Tracer { return trace.Multi(sinks...) }
