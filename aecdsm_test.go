package aecdsm_test

import (
	"bytes"
	"strings"
	"testing"

	"aecdsm"
	"aecdsm/internal/mem"
)

func TestFacadeRun(t *testing.T) {
	res, err := aecdsm.Run(aecdsm.Config{App: "IS", Protocol: "AEC", Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles() == 0 {
		t.Fatal("no cycles")
	}
}

func TestFacadeDefaults(t *testing.T) {
	res, err := aecdsm.Run(aecdsm.Config{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.App != "IS" || res.Run.Protocol != "AEC" {
		t.Fatalf("defaults: %s/%s", res.Run.App, res.Run.Protocol)
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := aecdsm.Run(aecdsm.Config{App: "nope", Scale: 0.05}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := aecdsm.Run(aecdsm.Config{Protocol: "nope", Scale: 0.05}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := aecdsm.NewProtocol("bogus", 2); err == nil {
		t.Fatal("NewProtocol accepted bogus name")
	}
	if _, err := aecdsm.NewApp("bogus", 1); err == nil {
		t.Fatal("NewApp accepted bogus name")
	}
}

func TestFacadeLists(t *testing.T) {
	if len(aecdsm.Protocols()) != 7 {
		t.Fatalf("protocols: %v", aecdsm.Protocols())
	}
	if len(aecdsm.Apps()) < 6 {
		t.Fatalf("apps: %v", aecdsm.Apps())
	}
	for _, p := range aecdsm.Protocols() {
		if _, err := aecdsm.NewProtocol(p, 2); err != nil {
			t.Errorf("protocol %s: %v", p, err)
		}
	}
}

func TestDefaultParams(t *testing.T) {
	p := aecdsm.DefaultParams()
	if p.NumProcs != 16 || p.PageSize != 4096 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTablesRenderContent checks the experiment drivers emit the expected
// headers and app rows at a tiny scale.
func TestTablesRenderContent(t *testing.T) {
	e := aecdsm.NewExperiments(0.02)
	var buf bytes.Buffer
	e.All(&buf)
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4",
		"Figure 3", "Figure 4", "Figure 5", "Figure 6",
		"Ns sweep",
		"IS", "Raytrace", "Water-ns", "FFT", "Ocean", "Water-sp",
		"busy", "synch", "waitQ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestPaperOrdering asserts the headline result at small scale: AEC
// outperforms TreadMarks for every application in our configuration
// (the paper reports 5 of 6 wins and one tie).
func TestPaperOrdering(t *testing.T) {
	e := aecdsm.NewExperiments(0.05)
	for _, app := range []string{"IS", "FFT", "Water-sp"} {
		aecRes := e.Run(app, "AEC")
		tmRes := e.Run(app, "TM")
		if aecRes.Cycles() >= tmRes.Cycles() {
			t.Errorf("%s: AEC %d !< TM %d", app, aecRes.Cycles(), tmRes.Cycles())
		}
	}
}

// miniProgram exercises the RunProgram entry point with a caller-supplied
// Program.
type miniProgram struct{ err error }

func (m *miniProgram) Name() string                  { return "mini" }
func (m *miniProgram) NumLocks() int                 { return 1 }
func (m *miniProgram) Err() error                    { return m.err }
func (m *miniProgram) Init(s *mem.Space, nprocs int) { s.Alloc("mini", 64, 0) }
func (m *miniProgram) Body(c *aecdsm.Ctx)            { c.Compute(100); c.Barrier() }

func TestRunProgram(t *testing.T) {
	for _, protocol := range aecdsm.Protocols() {
		res, err := aecdsm.RunProgram(aecdsm.DefaultParams(), protocol, &miniProgram{})
		if err != nil {
			t.Fatalf("%s: %v", protocol, err)
		}
		if res.Cycles() == 0 {
			t.Fatalf("%s: no cycles", protocol)
		}
	}
	if _, err := aecdsm.RunProgram(aecdsm.DefaultParams(), "bogus", &miniProgram{}); err == nil {
		t.Fatal("bogus protocol accepted")
	}
}
