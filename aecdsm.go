// Package aecdsm is a reproduction of "The Affinity Entry Consistency
// Protocol" (Seidel, Bianchini, Amorim; ICPP 1997): a software-only
// distributed shared-memory (SW-DSM) protocol based on Entry Consistency
// that eagerly generates diffs, hides their cost behind synchronization
// delays, and uses Lock Acquirer Prediction (LAP) to push updates to the
// predicted next acquirer of a lock before it asks for them.
//
// The package bundles:
//
//   - an execution-driven simulator of a 16-node network of workstations
//     (mesh interconnect, caches, TLBs, buses — the Table 1 cost model);
//   - the AEC protocol (with and without LAP), a TreadMarks-style lazy
//     release consistency baseline, and an ideal zero-cost memory;
//   - the paper's six applications (IS, Raytrace, Water-nsquared, FFT,
//     Ocean, Water-spatial) re-implemented on the DSM API and verified
//     against serial references;
//   - experiment drivers regenerating every table and figure of the
//     paper's evaluation section.
//
// Quick start:
//
//	res, err := aecdsm.Run(aecdsm.Config{Protocol: "AEC", App: "IS"})
//	fmt.Println(res.Cycles(), "simulated cycles")
//
// Full evaluation:
//
//	aecdsm.NewExperiments(1.0).All(os.Stdout)
package aecdsm

import (
	"fmt"

	"aecdsm/internal/aec"
	"aecdsm/internal/apps"
	"aecdsm/internal/fault"
	"aecdsm/internal/harness"
	"aecdsm/internal/memsys"
	"aecdsm/internal/munin"
	"aecdsm/internal/proto"
	"aecdsm/internal/tm"
)

// Params holds the simulated system parameters (Table 1 of the paper).
type Params = memsys.Params

// Result is the outcome of one simulation run.
type Result = harness.Result

// Experiments drives the paper's tables and figures.
type Experiments = harness.Experiments

// Program is an SPMD application runnable on the simulated DSM.
type Program = proto.Program

// Protocol is a software DSM coherence protocol implementation.
type Protocol = proto.Protocol

// Ctx is the DSM context application bodies program against.
type Ctx = proto.Ctx

// DefaultParams returns the paper's Table 1 configuration: 16 processors
// on a 4x4 wormhole mesh, 4KB pages, 256KB caches.
func DefaultParams() Params { return memsys.Default() }

// Protocols lists the available protocol names.
func Protocols() []string {
	return []string{"AEC", "AEC-noLAP", "TM", "TM-LH", "Munin", "Munin+LAP", "ideal"}
}

// Apps lists the registered application names (the paper's six first).
func Apps() []string { return apps.Names() }

// NewProtocol builds a protocol by name. ns is the LAP update-set size
// (only meaningful for AEC; the paper uses 2).
func NewProtocol(name string, ns int) (Protocol, error) {
	if ns <= 0 {
		ns = 2
	}
	switch name {
	case "AEC":
		return aec.New(aec.Options{UseLAP: true, Ns: ns}), nil
	case "AEC-noLAP":
		return aec.New(aec.Options{UseLAP: false, Ns: ns}), nil
	case "TM":
		return tm.New(), nil
	case "TM-LH":
		return tm.NewLazyHybrid(), nil
	case "Munin":
		return munin.New(munin.Options{}), nil
	case "Munin+LAP":
		return munin.New(munin.Options{UseLAP: true, Ns: ns}), nil
	case "ideal":
		return proto.NewIdeal(4096), nil
	}
	return nil, fmt.Errorf("aecdsm: unknown protocol %q (have %v)", name, Protocols())
}

// NewApp builds an application by name at the given problem scale
// ((0,1]; 1.0 = the paper's configuration).
func NewApp(name string, scale float64) (Program, error) {
	factory, ok := apps.Registry[name]
	if !ok {
		return nil, fmt.Errorf("aecdsm: unknown app %q (have %v)", name, Apps())
	}
	return factory(apps.Config{Scale: scale}), nil
}

// NewAppSeeded is NewApp with an explicit base seed perturbing every RNG
// stream of the application (zero keeps the historical streams).
func NewAppSeeded(name string, scale float64, baseSeed uint64) (Program, error) {
	factory, ok := apps.Registry[name]
	if !ok {
		return nil, fmt.Errorf("aecdsm: unknown app %q (have %v)", name, Apps())
	}
	return factory(apps.Config{Scale: scale, BaseSeed: baseSeed}), nil
}

// Config selects what to simulate.
type Config struct {
	// Params are the system parameters; zero value means DefaultParams.
	Params Params
	// Protocol is one of Protocols(); default "AEC".
	Protocol string
	// App is one of Apps(); default "IS".
	App string
	// Scale shrinks the problem size ((0,1]; default 1.0).
	Scale float64
	// Ns is the LAP update-set size (default 2).
	Ns int
	// TraceSink, when non-nil, receives every protocol event of the run
	// (see the Tracer type and NewTraceRing / NewJSONLTracer /
	// NewChromeTracer / NewTraceMetrics constructors). Tracing never
	// charges simulated cycles, so the measured results are identical
	// with or without a sink.
	TraceSink Tracer
	// Faults, when non-empty, enables deterministic fault injection: a
	// preset name ("light", "heavy") or a clause list like
	// "drop=0.05,dup=0.02,delay=0.05:8000". The empty string disables
	// injection entirely and leaves every measurement byte-identical to
	// earlier releases. See docs/ROBUSTNESS.md.
	Faults string
	// FaultSeed seeds the fault schedule (only meaningful with Faults).
	FaultSeed uint64
}

// Run simulates one application under one protocol and returns the
// measurements (execution breakdown, fault/diff/LAP statistics).
func Run(cfg Config) (*Result, error) {
	if cfg.Params.NumProcs == 0 {
		cfg.Params = DefaultParams()
	}
	if cfg.Protocol == "" {
		cfg.Protocol = "AEC"
	}
	if cfg.App == "" {
		cfg.App = "IS"
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	pr, err := NewProtocol(cfg.Protocol, cfg.Ns)
	if err != nil {
		return nil, err
	}
	prog, err := NewApp(cfg.App, cfg.Scale)
	if err != nil {
		return nil, err
	}
	var fcfg *fault.Config
	if cfg.Faults != "" {
		fc, err := fault.ParseSpec(cfg.Faults)
		if err != nil {
			return nil, fmt.Errorf("aecdsm: %w", err)
		}
		fc.Seed = cfg.FaultSeed
		fcfg = &fc
	}
	res := harness.RunFaultTraced(cfg.Params, pr, prog, cfg.TraceSink, fcfg)
	if res.Deadlocked {
		return res, fmt.Errorf("aecdsm: %s under %s deadlocked", cfg.App, cfg.Protocol)
	}
	if res.VerifyErr != nil {
		return res, fmt.Errorf("aecdsm: verification failed: %w", res.VerifyErr)
	}
	return res, nil
}

// RunProgram simulates a caller-supplied Program (see proto.Program for
// the interface) under the named protocol.
func RunProgram(params Params, protocol string, prog Program) (*Result, error) {
	if params.NumProcs == 0 {
		params = DefaultParams()
	}
	pr, err := NewProtocol(protocol, 2)
	if err != nil {
		return nil, err
	}
	res := harness.Run(params, pr, prog)
	if res.Deadlocked {
		return res, fmt.Errorf("aecdsm: %s deadlocked", prog.Name())
	}
	return res, res.VerifyErr
}

// NewExperiments builds the driver that regenerates the paper's tables and
// figures at the given problem scale.
func NewExperiments(scale float64) *Experiments {
	return harness.NewExperiments(scale)
}
