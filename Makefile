# Convenience entry points; CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test lint fuzz bench

all: build lint test

build:
	$(GO) build ./...

# Tier-1 test suite (use GOFLAGS=-short for the quick variant).
test:
	$(GO) test ./...

# Static gates: vet, formatting, and the repo's invariant lint suite
# (dsmvet; see docs/LINTING.md). staticcheck/govulncheck run in CI where
# the tools are installed.
lint:
	$(GO) vet ./...
	@fmt="$$(gofmt -l .)"; if [ -n "$$fmt" ]; then \
		echo "gofmt needed on:" >&2; echo "$$fmt" >&2; exit 1; fi
	$(GO) run ./cmd/dsmvet ./...

# Quick differential-checker pass (see docs/TESTING.md for deeper runs).
fuzz:
	$(GO) run ./cmd/fuzzdsm -iters 50

# Kernel and engine microbenchmarks plus the scaling-sweep timing,
# condensed by cmd/benchsum into one sorted {benchmark, ns/op, B/op,
# allocs/op} record per line so the perf trajectory is diffable across
# PRs (docs/PERFORMANCE.md, docs/SCALING.md).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMakeDiff|BenchmarkMergeDiffs' -benchmem -json . \
		| $(GO) run ./cmd/benchsum | tee BENCH_kernels.json
	$(GO) test -run '^$$' -bench 'BenchmarkSchedule|BenchmarkSendDeliver' -benchmem -json ./internal/sim/ \
		| $(GO) run ./cmd/benchsum -assert-zero-allocs 'BenchmarkSchedule$$|BenchmarkSendDeliver$$' | tee BENCH_engine.json
	$(GO) test -run '^$$' -bench 'BenchmarkScaling' -timeout 30m -json . \
		| $(GO) run ./cmd/benchsum | tee BENCH_scaling.json
